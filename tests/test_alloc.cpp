// Allocation-count properties of the hot message path.
//
// This binary overrides the global allocation functions with counting
// wrappers, so it lives apart from the functional suites: every test here
// measures a *delta* of global new calls across a scoped region, after a
// warmup round has faulted in pooled storage (event-queue chunk slabs,
// link-state arrays, span vectors).
//
// The property under test is the PR's core claim: a unicast send whose
// delivery closure fits the sim::InlineFn inline buffer (48 bytes) performs
// ZERO heap allocations from injection through delivery — the closure moves
// from the packet into the event-queue slot, and routing walks the tree
// without materializing a path vector.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "core/machine.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "sync/barrier.hpp"
#include "sync/spin.hpp"

namespace {

std::atomic<std::uint64_t> g_news{0};

}  // namespace

void* operator new(std::size_t n) {
  ++g_news;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  ++g_news;
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(a), n) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace amo::net {
namespace {

constexpr int kRounds = 256;

void SendRound(sim::Engine& e, Network& n, std::uint64_t* delivered) {
  for (int i = 0; i < kRounds; ++i) {
    n.send(Packet{0, static_cast<sim::NodeId>(1 + i % 3), MsgClass::kRequest,
                  32, [delivered] { ++*delivered; }});
    e.run();
  }
}

TEST(AllocCount, UnicastSendPathIsAllocationFree) {
  sim::Engine e;
  NetConfig cfg;
  cfg.num_nodes = 8;
  Network n(e, cfg);
  std::uint64_t delivered = 0;
  // Warmup: faults in event-queue chunk slabs and any lazily grown pools.
  SendRound(e, n, &delivered);
  const std::uint64_t before = g_news.load();
  SendRound(e, n, &delivered);
  const std::uint64_t after = g_news.load();
  EXPECT_EQ(after - before, 0u)
      << "unicast send with an inline-sized closure must not allocate";
  EXPECT_EQ(delivered, 2u * kRounds);
}

TEST(AllocCount, OversizedClosureBoxIsPooled) {
  sim::Engine e;
  NetConfig cfg;
  cfg.num_nodes = 4;
  Network n(e, cfg);
  std::uint64_t sink = 0;
  std::array<std::uint64_t, 16> big{};  // 128B capture: boxed fallback
  auto send_big = [&] {
    n.send(Packet{0, 1, MsgClass::kRequest, 32, [big, &sink] {
                    for (std::uint64_t v : big) sink += v;
                  }});
    e.run();
  };
  send_big();  // warmup: faults in the box's frame-pool size class
  const std::uint64_t before = g_news.load();
  send_big();
  const std::uint64_t after = g_news.load();
  // The boxed fallback draws from the frame pool, so even closures too
  // big for the inline buffer recycle their box in steady state.
  EXPECT_EQ(after - before, 0u);
}

// The PR's end-to-end claim: once pools are warm, a full AMO central
// barrier episode on 8 cpus — coroutine frames for every load/store, miss
// futures, MSHRs, line-event waiters, AMU queueing, directory entries,
// word-put waves, network hops, event scheduling — performs ZERO heap
// allocations. CPU 0 snapshots the global new count right after leaving
// an early (warmup) episode and again after the final episode; every
// allocation in between is steady-state execution-path traffic.
TEST(AllocCount, AmoBarrierEpisodeSteadyStateIsAllocationFree) {
  core::SystemConfig cfg;
  cfg.num_cpus = 8;
  core::Machine m(cfg);
  std::unique_ptr<sync::Barrier> barrier =
      sync::make_central_barrier(m, sync::Mechanism::kAmo, cfg.num_cpus);
  // Warmup must cover every rotating event-queue span slot the timeout
  // machinery can land in, not just fault in pools, so it spans many
  // episodes.
  constexpr int kWarmupEpisodes = 24;
  constexpr int kEpisodes = 32;
  std::uint64_t before = 0;
  std::uint64_t after = 0;
  for (sim::CpuId c = 0; c < cfg.num_cpus; ++c) {
    m.spawn(c, [&, c](core::ThreadCtx& t) -> sim::Task<void> {
      for (int ep = 1; ep <= kEpisodes; ++ep) {
        co_await t.compute(1 + (c * 7 + static_cast<unsigned>(ep)) % 50);
        co_await barrier->wait(t);
        if (c == 0 && ep == kWarmupEpisodes) before = g_news.load();
        if (c == 0 && ep == kEpisodes) after = g_news.load();
      }
    });
  }
  m.run();
  EXPECT_EQ(after - before, 0u)
      << "steady-state AMO barrier episodes must not touch the heap";
}

// The spin-virtualization layer's version of the same claim: a complete
// cached-spin episode — park registration, fallback re-poll timers
// arming, firing, and re-arming, detach/re-park, the final line-event
// wake — stays allocation-free once the frame and timer-cell pools are
// warm. Each episode survives ~16 fallback timeouts before release.
TEST(AllocCount, CachedSpinEpisodeWithFallbackTimeoutsIsAllocationFree) {
  core::SystemConfig cfg;
  cfg.num_cpus = 2;
  core::Machine m(cfg);
  const sim::Addr flag = m.galloc().alloc_word_line(0);
  constexpr int kWarmup = 8;
  constexpr int kEpisodes = 24;
  constexpr sim::Cycle kRecheck = 250;
  constexpr sim::Cycle kHold = 4000;
  std::uint64_t before = 0;
  std::uint64_t after = 0;
  m.spawn(0, [&](core::ThreadCtx& t) -> sim::Task<void> {
    for (int ep = 1; ep <= kEpisodes; ++ep) {
      const auto goal = static_cast<std::uint64_t>(ep);
      co_await sync::spin_cached_until(
          t, flag, [goal](std::uint64_t x) { return x >= goal; }, kRecheck);
      if (ep == kWarmup) before = g_news.load();
      if (ep == kEpisodes) after = g_news.load();
    }
  });
  m.spawn(1, [&](core::ThreadCtx& t) -> sim::Task<void> {
    for (int ep = 1; ep <= kEpisodes; ++ep) {
      co_await t.compute(kHold);
      co_await t.store(flag, static_cast<std::uint64_t>(ep));
    }
  });
  m.run();
  EXPECT_EQ(after - before, 0u)
      << "steady-state cached-spin episodes must not touch the heap";
}

TEST(AllocCount, EngineSteadyStateScheduleIsAllocationFree) {
  sim::Engine e;
  std::uint64_t ticks = 0;
  auto round = [&] {
    for (int i = 0; i < kRounds; ++i) {
      e.schedule(static_cast<sim::Cycle>(1 + i % 7), [&ticks] { ++ticks; });
    }
    e.run();
  };
  round();  // warmup: chunk slabs
  const std::uint64_t before = g_news.load();
  round();
  const std::uint64_t after = g_news.load();
  EXPECT_EQ(after - before, 0u)
      << "steady-state scheduling must recycle chunk storage";
}

}  // namespace
}  // namespace amo::net
