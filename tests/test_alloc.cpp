// Allocation-count properties of the hot message path.
//
// This binary overrides the global allocation functions with counting
// wrappers, so it lives apart from the functional suites: every test here
// measures a *delta* of global new calls across a scoped region, after a
// warmup round has faulted in pooled storage (event-queue chunk slabs,
// link-state arrays, span vectors).
//
// The property under test is the PR's core claim: a unicast send whose
// delivery closure fits the sim::InlineFn inline buffer (48 bytes) performs
// ZERO heap allocations from injection through delivery — the closure moves
// from the packet into the event-queue slot, and routing walks the tree
// without materializing a path vector.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "net/network.hpp"
#include "sim/engine.hpp"

namespace {

std::atomic<std::uint64_t> g_news{0};

}  // namespace

void* operator new(std::size_t n) {
  ++g_news;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  ++g_news;
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(a), n) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace amo::net {
namespace {

constexpr int kRounds = 256;

void SendRound(sim::Engine& e, Network& n, std::uint64_t* delivered) {
  for (int i = 0; i < kRounds; ++i) {
    n.send(Packet{0, static_cast<sim::NodeId>(1 + i % 3), MsgClass::kRequest,
                  32, [delivered] { ++*delivered; }});
    e.run();
  }
}

TEST(AllocCount, UnicastSendPathIsAllocationFree) {
  sim::Engine e;
  NetConfig cfg;
  cfg.num_nodes = 8;
  Network n(e, cfg);
  std::uint64_t delivered = 0;
  // Warmup: faults in event-queue chunk slabs and any lazily grown pools.
  SendRound(e, n, &delivered);
  const std::uint64_t before = g_news.load();
  SendRound(e, n, &delivered);
  const std::uint64_t after = g_news.load();
  EXPECT_EQ(after - before, 0u)
      << "unicast send with an inline-sized closure must not allocate";
  EXPECT_EQ(delivered, 2u * kRounds);
}

TEST(AllocCount, OversizedClosureAllocatesOnlyItsBox) {
  sim::Engine e;
  NetConfig cfg;
  cfg.num_nodes = 4;
  Network n(e, cfg);
  std::uint64_t sink = 0;
  std::array<std::uint64_t, 16> big{};  // 128B capture: boxed fallback
  auto send_big = [&] {
    n.send(Packet{0, 1, MsgClass::kRequest, 32, [big, &sink] {
                    for (std::uint64_t v : big) sink += v;
                  }});
    e.run();
  };
  send_big();  // warmup
  const std::uint64_t before = g_news.load();
  send_big();
  const std::uint64_t after = g_news.load();
  // One box for the closure; the fabric itself still adds nothing.
  EXPECT_EQ(after - before, 1u);
}

TEST(AllocCount, EngineSteadyStateScheduleIsAllocationFree) {
  sim::Engine e;
  std::uint64_t ticks = 0;
  auto round = [&] {
    for (int i = 0; i < kRounds; ++i) {
      e.schedule(static_cast<sim::Cycle>(1 + i % 7), [&ticks] { ++ticks; });
    }
    e.run();
  };
  round();  // warmup: chunk slabs
  const std::uint64_t before = g_news.load();
  round();
  const std::uint64_t after = g_news.load();
  EXPECT_EQ(after - before, 0u)
      << "steady-state scheduling must recycle chunk storage";
}

}  // namespace
}  // namespace amo::net
