// Leak-regression and waiter-accounting properties of the spin-wait
// virtualization layer.
//
// The bugs these pin down: with_timeout used to leak its timeout callback
// (and the watcher coroutine frame) whenever the future completed first,
// and a cached spin that survived K fallback re-polls used to stack K
// stale waiters on the cache controller's line-event list. Every test
// here measures pool/queue/table sizes across many repetitions, so a
// reintroduced leak shows up as monotone growth rather than a one-off.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>

#include "core/machine.hpp"
#include "sim/engine.hpp"
#include "sim/frame_pool.hpp"
#include "sim/future.hpp"
#include "sim/task.hpp"
#include "sim/timeout.hpp"
#include "sync/barrier.hpp"
#include "sync/spin.hpp"

namespace amo {
namespace {

// ------------------------------------------------ with_timeout (engine)

sim::Task<void> TimeoutOnce(sim::Engine& e, int* timeouts) {
  sim::Promise<std::uint64_t> never(e);  // intentionally never completed
  const std::optional<std::uint64_t> r =
      co_await sim::with_timeout(e, never.get_future(), 64);
  if (!r.has_value()) ++*timeouts;
}

TEST(SpinLeaks, ConsecutiveTimeoutsDoNotGrowPoolsOrQueue) {
  sim::Engine e;
  int timeouts = 0;
  const auto once = [&] {
    sim::Task<void> t = TimeoutOnce(e, &timeouts);
    e.run();
  };
  for (int i = 0; i < 8; ++i) once();  // warmup: frame slabs, timer cells
  const std::size_t slabs = sim::frame_pool_detail::slabs_held();
  const std::size_t cells = e.timer_cells_allocated();
  for (int i = 0; i < 256; ++i) once();
  EXPECT_EQ(timeouts, 8 + 256);
  EXPECT_EQ(sim::frame_pool_detail::slabs_held(), slabs)
      << "timed-out watcher frames must return to the pool";
  EXPECT_EQ(e.timer_cells_allocated(), cells)
      << "fired timeout timers must recycle their cells";
  EXPECT_EQ(e.pending_events(), 0u)
      << "nothing may linger in the ladder queue after a timeout drains";
}

sim::Task<void> CompleteOnce(sim::Engine& e, std::uint64_t* sum) {
  sim::Promise<std::uint64_t> p(e);
  e.schedule(8, [p] { p.set_value(42); });
  // Timeout far in the future: before the fix, each iteration leaked the
  // un-fired timeout callback (and its captures) until that cycle.
  const std::optional<std::uint64_t> r =
      co_await sim::with_timeout(e, p.get_future(), 1 << 20);
  EXPECT_TRUE(r.has_value());
  if (r.has_value()) *sum += *r;
}

TEST(SpinLeaks, CompletionBeforeTimeoutReleasesTheTimer) {
  sim::Engine e;
  std::uint64_t sum = 0;
  const auto once = [&] {
    sim::Task<void> t = CompleteOnce(e, &sum);
    e.run();  // also drains the canceled timer's tombstone slot
  };
  for (int i = 0; i < 8; ++i) once();
  const std::size_t slabs = sim::frame_pool_detail::slabs_held();
  const std::size_t cells = e.timer_cells_allocated();
  for (int i = 0; i < 256; ++i) once();
  EXPECT_EQ(sum, 42u * (8 + 256));
  EXPECT_EQ(sim::frame_pool_detail::slabs_held(), slabs);
  EXPECT_EQ(e.timer_cells_allocated(), cells)
      << "cancel() must release the cell even though the queue slot "
         "fires later as a tombstone";
  EXPECT_EQ(e.pending_events(), 0u);
}

// --------------------------------------------- cached spin (machine)

// A spin that survives K fallback re-polls holds exactly ONE parked
// waiter for the whole stretch — not K stale line-event waiters.
TEST(SpinLeaks, SpinSurvivingRepollsHoldsExactlyOneWaiter) {
  core::SystemConfig cfg;
  cfg.num_cpus = 2;
  core::Machine m(cfg);
  const sim::Addr flag = m.galloc().alloc_word_line(0);
  constexpr sim::Cycle kRecheck = 500;
  constexpr sim::Cycle kRelease = 20000;  // ~40 fallback re-polls
  std::size_t max_parked = 0;
  std::size_t max_line_waiters = 0;
  std::size_t samples_parked = 0;
  std::size_t samples = 0;
  // Sample the waiter tables while cpu 0 is mid-spin. The stride is
  // coprime to the re-poll period so samples land all over the cadence.
  for (sim::Cycle at = 2000; at < kRelease; at += 977) {
    m.engine().schedule_at(at, [&] {
      ++samples;
      const auto& cache = m.core(0).cache();
      max_parked = std::max(max_parked, cache.parked_entries());
      max_line_waiters =
          std::max(max_line_waiters, cache.line_waiter_entries());
      if (cache.parked_entries() == 1) ++samples_parked;
    });
  }
  m.spawn(0, [&](core::ThreadCtx& t) -> sim::Task<void> {
    const std::uint64_t v = co_await sync::spin_cached_until(
        t, flag, [](std::uint64_t x) { return x != 0; }, kRecheck);
    EXPECT_EQ(v, 1u);
  });
  m.spawn(1, [&](core::ThreadCtx& t) -> sim::Task<void> {
    co_await t.compute(kRelease);
    co_await t.store(flag, 1);
  });
  m.run();
  EXPECT_GE(samples, 18u);
  EXPECT_EQ(max_parked, 1u) << "re-polls must re-arm the same entry";
  EXPECT_EQ(samples_parked, samples)
      << "the persistent registration never lapses between re-polls";
  EXPECT_EQ(max_line_waiters, 0u)
      << "parked spins must not stack per-poll line-event waiters";
  EXPECT_EQ(m.core(0).cache().parked_entries(), 0u)
      << "a satisfied spin unparks its entry";
  EXPECT_EQ(m.core(0).cache().line_waiter_entries(), 0u);
}

// Steady-state episodes of spin + fallback re-polls keep the frame pool,
// the timer-cell pool, and the ladder queue at their high-water marks.
TEST(SpinLeaks, CachedSpinEpisodesReachSteadyState) {
  core::SystemConfig cfg;
  cfg.num_cpus = 2;
  core::Machine m(cfg);
  const sim::Addr flag = m.galloc().alloc_word_line(0);
  constexpr int kWarmup = 8;
  constexpr int kEpisodes = 32;
  constexpr sim::Cycle kRecheck = 250;
  constexpr sim::Cycle kHold = 4000;  // ~16 re-polls per episode
  std::size_t slabs = 0, cells = 0;
  bool grew = false;
  m.spawn(0, [&](core::ThreadCtx& t) -> sim::Task<void> {
    for (int ep = 1; ep <= kEpisodes; ++ep) {
      const auto goal = static_cast<std::uint64_t>(ep);
      co_await sync::spin_cached_until(
          t, flag, [goal](std::uint64_t x) { return x >= goal; }, kRecheck);
      if (ep == kWarmup) {
        slabs = sim::frame_pool_detail::slabs_held();
        cells = t.engine().timer_cells_allocated();
      } else if (ep > kWarmup) {
        grew = grew ||
               sim::frame_pool_detail::slabs_held() != slabs ||
               t.engine().timer_cells_allocated() != cells;
      }
    }
  });
  m.spawn(1, [&](core::ThreadCtx& t) -> sim::Task<void> {
    for (int ep = 1; ep <= kEpisodes; ++ep) {
      co_await t.compute(kHold);
      co_await t.store(flag, static_cast<std::uint64_t>(ep));
    }
  });
  m.run();
  EXPECT_FALSE(grew)
      << "episodes past warmup must not fault new slabs or timer cells";
  EXPECT_EQ(m.engine().pending_events(), 0u);
}

// --------------------------------------- uncached word-watch (machine)

TEST(SpinLeaks, UncachedWatchHoldsOneDirectoryEntry) {
  core::SystemConfig cfg;
  cfg.num_cpus = 2;
  cfg.spin.uncached_watch = true;
  core::Machine m(cfg);
  const sim::Addr flag = m.galloc().alloc_word_line(0);
  constexpr sim::Cycle kRelease = 30000;
  std::size_t max_watches = 0;
  for (sim::Cycle at = 3000; at < kRelease; at += 977) {
    m.engine().schedule_at(at, [&] {
      max_watches = std::max(max_watches, m.dir(0).watch_entries());
    });
  }
  m.spawn(0, [&](core::ThreadCtx& t) -> sim::Task<void> {
    const std::uint64_t v = co_await sync::spin_uncached_until(
        t, flag, [](std::uint64_t x) { return x != 0; },
        [](std::uint64_t) { return sim::Cycle{400}; });
    EXPECT_EQ(v, 1u);
  });
  m.spawn(1, [&](core::ThreadCtx& t) -> sim::Task<void> {
    co_await t.compute(kRelease);
    co_await t.uncached_store(flag, 1);
  });
  m.run();
  EXPECT_EQ(max_watches, 1u)
      << "one parked stretch registers exactly one home-node watcher";
  EXPECT_EQ(m.dir(0).watch_entries(), 0u)
      << "the wake-up ping flushes and erases the watch entry";
}

// ------------------------------------- quiesce accounting (machine)

sim::Json strip_spin_groups(const sim::Json& j) {
  if (!j.is_object()) return j;
  sim::Json out = sim::Json::object();
  for (const auto& [k, v] : j.items()) {
    if (k == "spin") continue;  // the only groups quiesce mode adds
    out[k] = strip_spin_groups(v);
  }
  return out;
}

struct ParityRun {
  sim::Cycle now;
  std::uint64_t executed;
  std::uint64_t scheduled;
  std::string stats;  // registry snapshot minus the cpuN.spin groups
};

ParityRun run_amo_barrier(bool quiesce) {
  core::SystemConfig cfg;
  cfg.num_cpus = 8;
  if (quiesce) {
    cfg.spin.recheck_cycles = 0;
    cfg.spin.exact_accounting = true;
  }
  core::Machine m(cfg);
  const std::unique_ptr<sync::Barrier> barrier =
      sync::make_central_barrier(m, sync::Mechanism::kAmo, cfg.num_cpus);
  constexpr int kEpisodes = 12;
  for (sim::CpuId c = 0; c < cfg.num_cpus; ++c) {
    m.spawn(c, [&, c](core::ThreadCtx& t) -> sim::Task<void> {
      for (int ep = 1; ep <= kEpisodes; ++ep) {
        co_await t.compute(1 + (c * 7 + static_cast<unsigned>(ep)) % 50);
        co_await barrier->wait(t);
      }
    });
  }
  m.run();
  return ParityRun{m.engine().now(), m.engine().events_executed(),
                   m.engine().events_scheduled(),
                   strip_spin_groups(m.stats_json()).dump()};
}

// Quiesce mode with exact accounting reproduces the default mode's
// counters exactly — same end time, same (synthesized-inclusive) event
// totals, same registry snapshot outside the added cpuN.spin groups.
TEST(SpinLeaks, QuiesceExactAccountingMatchesDefaultMode) {
  const ParityRun dflt = run_amo_barrier(false);
  const ParityRun quiesce = run_amo_barrier(true);
  EXPECT_EQ(dflt.now, quiesce.now);
  EXPECT_EQ(dflt.executed, quiesce.executed);
  EXPECT_EQ(dflt.scheduled, quiesce.scheduled);
  EXPECT_EQ(dflt.stats, quiesce.stats);
}

}  // namespace
}  // namespace amo
